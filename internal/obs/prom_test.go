package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// buildTestRegistry assembles a registry with one of each source kind and
// fully deterministic values.
func buildTestRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("demo_events_total", "events processed", func() uint64 { return 42 })
	reg.Gauge("demo_backlog_slots", "retired but unreclaimed", func() float64 { return 7.5 })
	ts := NewThreadStats(2)
	for c := Counter(0); c < NumCounters; c++ {
		ts.At(0).Add(c, uint64(c)+1)
		ts.At(1).Add(c, 100*(uint64(c)+1))
	}
	ts.At(0).SetLocalRetired(3)
	ts.At(1).SetLocalRetired(4)
	reg.ThreadCounters("demo", ts)
	return reg
}

// The non-histogram output is compared byte-for-byte: the exposition
// format is a wire contract, so a formatting regression must fail loudly.
func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := buildTestRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	want.WriteString(`# HELP demo_events_total events processed
# TYPE demo_events_total counter
demo_events_total 42
# HELP demo_backlog_slots retired but unreclaimed
# TYPE demo_backlog_slots gauge
demo_backlog_slots 7.5
`)
	for c := Counter(0); c < NumCounters; c++ {
		name := "demo_" + c.String() + "_total"
		want.WriteString("# HELP " + name + " per-thread " + c.String() + " counter\n")
		want.WriteString("# TYPE " + name + " counter\n")
		want.WriteString(name + `{thread="0"} ` + strconv.FormatUint(uint64(c)+1, 10) + "\n")
		want.WriteString(name + `{thread="1"} ` + strconv.FormatUint(100*(uint64(c)+1), 10) + "\n")
	}
	want.WriteString(`# HELP demo_local_retired_slots slots buffered in the thread's local retire block
# TYPE demo_local_retired_slots gauge
demo_local_retired_slots{thread="0"} 3
demo_local_retired_slots{thread="1"} 4
`)
	if b.String() != want.String() {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want.String())
	}
}

var sampleRe = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? [-+]?([0-9.eE+-]+|Inf|NaN)$`)

// Histograms are validated structurally: every line parses, buckets are
// cumulative and monotonic, +Inf equals _count, and _sum is in seconds.
func TestWritePrometheusHistogram(t *testing.T) {
	reg := NewRegistry()
	var h metrics.Histogram
	h.Observe(100 * time.Nanosecond)
	h.Observe(5 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	reg.Histogram("demo_pause_seconds", "pause durations", &h)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	var prev uint64
	var bucketLines, infCount int
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleRe.MatchString(line) {
			t.Fatalf("bad sample line %q", line)
		}
		val, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		switch {
		case strings.Contains(line, `le="+Inf"`):
			infCount++
			if err != nil || val != 3 {
				t.Fatalf("+Inf bucket = %q, want 3", line)
			}
		case strings.HasPrefix(line, "demo_pause_seconds_bucket"):
			bucketLines++
			if err != nil || val < prev {
				t.Fatalf("non-cumulative bucket line %q after %d", line, prev)
			}
			prev = val
		case strings.HasPrefix(line, "demo_pause_seconds_count"):
			if err != nil || val != 3 {
				t.Fatalf("_count = %q, want 3", line)
			}
		case strings.HasPrefix(line, "demo_pause_seconds_sum"):
			f, ferr := strconv.ParseFloat(line[strings.LastIndexByte(line, ' ')+1:], 64)
			if ferr != nil || f < 0.003 || f > 0.0031 {
				t.Fatalf("_sum = %q, want ≈ 0.003005 seconds", line)
			}
		}
	}
	if bucketLines != metrics.Buckets-1 || infCount != 1 {
		t.Fatalf("got %d finite buckets + %d inf, want %d + 1", bucketLines, infCount, metrics.Buckets-1)
	}
}

func TestHandlerRoutes(t *testing.T) {
	srv := httptest.NewServer(buildTestRegistry().Handler())
	defer srv.Close()

	get := func(path string) (*http.Response, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			b.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return resp, b.String()
	}

	resp, body := get("/metrics")
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/plain; version=0.0.4") {
		t.Fatalf("/metrics: status %d content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if !strings.Contains(body, "demo_events_total 42") {
		t.Fatalf("/metrics body missing counter:\n%s", body)
	}

	resp, body = get("/stats.json")
	if resp.StatusCode != 200 {
		t.Fatalf("/stats.json: status %d", resp.StatusCode)
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/stats.json does not parse: %v", err)
	}
	if doc.Counters["demo_events_total"] != 42 || doc.Counters["demo_ops_total"] != 101 {
		t.Fatalf("unexpected counters: %v", doc.Counters)
	}

	if resp, _ := get("/debug/pprof/cmdline"); resp.StatusCode != 200 {
		t.Fatalf("/debug/pprof/cmdline: status %d", resp.StatusCode)
	}
	if resp, _ := get("/nope"); resp.StatusCode != 404 {
		t.Fatalf("/nope: status %d", resp.StatusCode)
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(HandlerFor(func() *Registry { return nil }))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("nil registry: status %d, want 503", resp.StatusCode)
	}
}
