package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// GaugeFunc samples one gauge value.
type GaugeFunc func() float64

// CounterFunc samples one cumulative counter value.
type CounterFunc func() uint64

type gaugeEntry struct {
	name, help string
	fn         GaugeFunc
}

type counterEntry struct {
	name, help string
	fn         CounterFunc
}

type threadEntry struct {
	prefix string
	ts     *ThreadStats
}

type histEntry struct {
	name, help string
	h          *metrics.Histogram
}

type vecGaugeEntry struct {
	name, help, label string
	n                 int
	fn                func(i int) float64
}

type vecCounterEntry struct {
	name, help, label string
	n                 int
	fn                func(i int) uint64
}

type vecHistEntry struct {
	name, help, label string
	n                 int
	fn                func(i int) *metrics.Histogram
}

// Registry collects metric sources and renders them as Prometheus text or
// JSON. Registration happens at setup time; scrapes may run concurrently
// with the writers feeding the sources (sources are sampled, not locked).
type Registry struct {
	mu          sync.Mutex
	gauges      []gaugeEntry
	counters    []counterEntry
	vecGauges   []vecGaugeEntry
	vecCounters []vecCounterEntry
	vecHists    []vecHistEntry
	threads     []threadEntry
	hists       []histEntry
	routes      map[string]http.Handler

	// tracers holds the registered protocol event recorders behind an
	// atomic pointer (copy-on-write under mu) so the trace_events_total
	// counter can sample them from inside a locked scrape without
	// re-entering the mutex.
	tracers atomic.Pointer[[]*trace.Recorder]

	// gen counts series-affecting registrations so samplers holding a
	// prebuilt plan (the flight recorder) can detect late registrations
	// and rebuild instead of silently missing new families.
	gen atomic.Uint64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Gauge registers a sampled gauge. name must be a valid Prometheus metric
// name (snake_case).
func (r *Registry) Gauge(name, help string, fn GaugeFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, gaugeEntry{name, help, fn})
	r.gen.Add(1)
}

// Counter registers a sampled cumulative counter. By Prometheus convention
// name should end in _total.
func (r *Registry) Counter(name, help string, fn CounterFunc) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters = append(r.counters, counterEntry{name, help, fn})
	r.gen.Add(1)
}

// GaugeVec registers a family of n gauges sharing one name and help text,
// distinguished by a label (e.g. shard): sample i exports as
// name{label="i"} under a single HELP/TYPE header. Used for per-shard pool
// occupancy, where one metric per shard would drown the scrape output in
// headers.
func (r *Registry) GaugeVec(name, help, label string, n int, fn func(i int) float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vecGauges = append(r.vecGauges, vecGaugeEntry{name, help, label, n, fn})
	r.gen.Add(1)
}

// CounterVec registers a family of n cumulative counters sharing one name,
// distinguished by a label; sample i exports as name{label="i"}.
func (r *Registry) CounterVec(name, help, label string, n int, fn func(i int) uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vecCounters = append(r.vecCounters, vecCounterEntry{name, help, label, n, fn})
	r.gen.Add(1)
}

// HistogramVec registers a family of n histograms sharing one name and
// help text, distinguished by a label: sample i exports in Prometheus
// histogram format as name_bucket{label="i",le="..."} (plus the matching
// _sum and _count series) and in the JSON snapshot as name{label="i"}.
// Used for the server's per-(command, shard) latency families, where a
// metric per shard would drown the scrape output in headers.
func (r *Registry) HistogramVec(name, help, label string, n int, fn func(i int) *metrics.Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vecHists = append(r.vecHists, vecHistEntry{name, help, label, n, fn})
	r.gen.Add(1)
}

// Handle registers an extra HTTP route served by this registry's
// handler (HandlerFor falls back to registered routes before 404). The
// hook lets subsystems attach their own debug endpoints — the server's
// /debug/slowlog — to the one observability listener without the
// listener owner knowing about them.
func (r *Registry) Handle(path string, h http.Handler) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.routes == nil {
		r.routes = make(map[string]http.Handler)
	}
	r.routes[path] = h
}

// route returns the handler registered for path, or nil.
func (r *Registry) route(path string) http.Handler {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.routes[path]
}

// Routes returns the registered extra route paths (sorted), so probes
// can discover and exercise every attached debug endpoint.
func (r *Registry) Routes() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.routes))
	for p := range r.routes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// ThreadCounters registers a per-thread counter block set; each counter
// exports as <prefix>_<counter>_total{thread="i"} plus the local-retired
// gauge as <prefix>_local_retired_slots{thread="i"}.
func (r *Registry) ThreadCounters(prefix string, ts *ThreadStats) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.threads = append(r.threads, threadEntry{prefix, ts})
	r.gen.Add(1)
}

// Histogram registers a pause histogram; it exports in Prometheus
// histogram format with log₂ bucket edges converted to seconds.
func (r *Registry) Histogram(name, help string, h *metrics.Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hists = append(r.hists, histEntry{name, help, h})
	r.gen.Add(1)
}

// Trace registers a protocol event recorder: its merged rings become the
// /trace endpoint's payload (TraceEvents, WriteTrace*), and the first
// registration adds a trace_events_total counter reporting how many
// events were ever recorded across all registered recorders (including
// ones the rings have since overwritten).
func (r *Registry) Trace(rec *trace.Recorder) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.tracers.Load()
	var recs []*trace.Recorder
	if old != nil {
		recs = append(recs, *old...)
	}
	recs = append(recs, rec)
	r.tracers.Store(&recs)
	if old == nil {
		r.counters = append(r.counters, counterEntry{
			"trace_events_total",
			"protocol events recorded by the trace rings (including overwritten)",
			r.TraceTotal,
		})
		r.gen.Add(1)
	}
}

func (r *Registry) traceRecs() []*trace.Recorder {
	if p := r.tracers.Load(); p != nil {
		return *p
	}
	return nil
}

// TraceTotal returns how many protocol events were ever recorded across
// the registered recorders. Lock-free, so it is safe both as a counter
// source inside a scrape and from signal handlers.
func (r *Registry) TraceTotal() uint64 {
	var n uint64
	for _, rec := range r.traceRecs() {
		n += rec.Total()
	}
	return n
}

// TraceEvents snapshots every registered recorder and returns the merged
// timeline. When more than one recorder is registered (several managers
// feeding one registry), thread ids are offset per recorder so each
// (recorder, thread) pair keeps a distinct track.
func (r *Registry) TraceEvents() []trace.Event {
	recs := r.traceRecs()
	var out []trace.Event
	base := int32(0)
	for _, rec := range recs {
		evs := rec.Events()
		if base != 0 {
			for i := range evs {
				evs[i].TID += base
			}
		}
		out = append(out, evs...)
		base += int32(rec.Threads())
	}
	if len(recs) > 1 {
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.TS != b.TS {
				return a.TS < b.TS
			}
			if a.TID != b.TID {
				return a.TID < b.TID
			}
			return a.Seq < b.Seq
		})
	}
	return out
}

// WriteTraceChrome writes the merged trace in Chrome trace_event format
// (chrome://tracing, Perfetto).
func (r *Registry) WriteTraceChrome(w io.Writer) error {
	return trace.WriteChrome(w, r.TraceEvents())
}

// WriteTraceJSONL writes the merged trace as one JSON object per line.
func (r *Registry) WriteTraceJSONL(w io.Writer) error {
	return trace.WriteJSONL(w, r.TraceEvents())
}

// jsonHist is the JSON rendering of a histogram snapshot. The original
// fields keep their names and meaning (older tooling parses them); the
// extra percentiles are additive.
type jsonHist struct {
	Count  uint64 `json:"count"`
	SumNs  uint64 `json:"sum_ns"`
	MeanNs uint64 `json:"mean_ns"`
	MaxNs  uint64 `json:"max_ns"`
	P50Ns  uint64 `json:"p50_ns"`
	P90Ns  uint64 `json:"p90_ns"`
	P99Ns  uint64 `json:"p99_ns"`
	P999Ns uint64 `json:"p999_ns"`
}

// jsonSnapshot is the /stats.json document.
type jsonSnapshot struct {
	Counters   map[string]uint64              `json:"counters,omitempty"`
	Gauges     map[string]float64             `json:"gauges,omitempty"`
	PerThread  map[string][]map[string]uint64 `json:"per_thread,omitempty"`
	Histograms map[string]jsonHist            `json:"histograms,omitempty"`
}

// snapshot samples every source under the registry lock.
func (r *Registry) snapshot() jsonSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := jsonSnapshot{}
	if len(r.counters) > 0 || len(r.threads) > 0 || len(r.vecCounters) > 0 {
		s.Counters = map[string]uint64{}
	}
	for _, c := range r.counters {
		s.Counters[c.name] = c.fn()
	}
	for _, vc := range r.vecCounters {
		for i := 0; i < vc.n; i++ {
			s.Counters[vc.name+"{"+vc.label+"=\""+strconv.Itoa(i)+"\"}"] = vc.fn(i)
		}
	}
	if len(r.gauges) > 0 || len(r.vecGauges) > 0 {
		s.Gauges = map[string]float64{}
	}
	for _, g := range r.gauges {
		s.Gauges[g.name] = g.fn()
	}
	for _, vg := range r.vecGauges {
		for i := 0; i < vg.n; i++ {
			s.Gauges[vg.name+"{"+vg.label+"=\""+strconv.Itoa(i)+"\"}"] = vg.fn(i)
		}
	}
	if len(r.threads) > 0 {
		s.PerThread = map[string][]map[string]uint64{}
	}
	for _, te := range r.threads {
		rows := make([]map[string]uint64, te.ts.Threads())
		for i := 0; i < te.ts.Threads(); i++ {
			b := te.ts.At(i)
			row := map[string]uint64{"thread": uint64(i)}
			for c := Counter(0); c < NumCounters; c++ {
				row[c.String()] = b.Load(c)
			}
			row["local_retired"] = b.LocalRetired()
			rows[i] = row
		}
		s.PerThread[te.prefix] = rows
		// Aggregate totals next to the other counters for quick scans.
		tot := te.ts.Totals()
		for c := Counter(0); c < NumCounters; c++ {
			s.Counters[te.prefix+"_"+c.String()+"_total"] = tot[c]
		}
	}
	if len(r.hists) > 0 || len(r.vecHists) > 0 {
		s.Histograms = map[string]jsonHist{}
	}
	for _, he := range r.hists {
		s.Histograms[he.name] = histJSON(he.h)
	}
	for _, vh := range r.vecHists {
		for i := 0; i < vh.n; i++ {
			s.Histograms[vh.name+"{"+vh.label+"=\""+strconv.Itoa(i)+"\"}"] = histJSON(vh.fn(i))
		}
	}
	return s
}

// histJSON renders one histogram snapshot as the JSON block /stats.json
// carries.
func histJSON(h *metrics.Histogram) jsonHist {
	snap := h.Snapshot()
	jh := jsonHist{Count: snap.Count, SumNs: snap.Sum, MaxNs: snap.Max}
	if snap.Count > 0 {
		jh.MeanNs = snap.Sum / snap.Count
	}
	jh.P50Ns = snap.QuantileNs(0.50)
	jh.P90Ns = snap.QuantileNs(0.90)
	jh.P99Ns = snap.QuantileNs(0.99)
	jh.P999Ns = snap.QuantileNs(0.999)
	return jh
}

// WriteJSON renders every registered source as an indented JSON document.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.snapshot())
}

// SeriesSource is one scalar time series a periodic sampler can poll:
// a name (matching the /stats.json key, including any {label="i"}
// suffix) and a closure returning the current value. Counters surface
// as their cumulative value; consumers wanting rates difference
// successive samples themselves.
type SeriesSource struct {
	Name   string
	Sample func() float64
}

// HistSource is one histogram instance. Family is the base name shared
// by every instance of a HistogramVec (equal to Name for plain
// Histogram registrations) so samplers can merge per-shard instances
// into one windowed family.
type HistSource struct {
	Name   string
	Family string
	Hist   *metrics.Histogram
}

// Generation returns a counter bumped on every series-affecting
// registration. A sampler caches the plan built from Sources() and
// rebuilds when the generation moves.
func (r *Registry) Generation() uint64 { return r.gen.Load() }

// Sources flattens every registered scalar metric into sampling
// closures and enumerates every histogram instance. Per-thread counter
// blocks surface as their aggregated <prefix>_<counter>_total series
// (the per-thread rows would multiply the series count without adding
// signal a time-series view needs). The returned slices are freshly
// allocated; the closures are safe to call concurrently with the
// writers feeding the sources, like any scrape.
func (r *Registry) Sources() ([]SeriesSource, []HistSource) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var ss []SeriesSource
	for _, c := range r.counters {
		fn := c.fn
		ss = append(ss, SeriesSource{c.name, func() float64 { return float64(fn()) }})
	}
	for _, vc := range r.vecCounters {
		for i := 0; i < vc.n; i++ {
			fn, j := vc.fn, i
			name := vc.name + "{" + vc.label + "=\"" + strconv.Itoa(i) + "\"}"
			ss = append(ss, SeriesSource{name, func() float64 { return float64(fn(j)) }})
		}
	}
	for _, g := range r.gauges {
		ss = append(ss, SeriesSource{g.name, g.fn})
	}
	for _, vg := range r.vecGauges {
		for i := 0; i < vg.n; i++ {
			fn, j := vg.fn, i
			name := vg.name + "{" + vg.label + "=\"" + strconv.Itoa(i) + "\"}"
			ss = append(ss, SeriesSource{name, func() float64 { return fn(j) }})
		}
	}
	for _, te := range r.threads {
		ts := te.ts
		for c := Counter(0); c < NumCounters; c++ {
			k := c
			ss = append(ss, SeriesSource{
				te.prefix + "_" + c.String() + "_total",
				func() float64 {
					var n uint64
					for i := 0; i < ts.Threads(); i++ {
						n += ts.At(i).Load(k)
					}
					return float64(n)
				},
			})
		}
	}
	var hs []HistSource
	for _, he := range r.hists {
		hs = append(hs, HistSource{he.name, he.name, he.h})
	}
	for _, vh := range r.vecHists {
		for i := 0; i < vh.n; i++ {
			name := vh.name + "{" + vh.label + "=\"" + strconv.Itoa(i) + "\"}"
			hs = append(hs, HistSource{name, vh.name, vh.fn(i)})
		}
	}
	return ss, hs
}
