// Package obs is the observability layer of the repository: lock-free,
// cache-padded per-thread counter blocks, callback gauges sampled from the
// scheme/arena/pool layers, and a registry that exports everything as
// Prometheus text or JSON (optionally over HTTP with pprof attached).
//
// Design constraints, in order:
//
//  1. Instrumented hot paths must stay allocation-free and lock-free: every
//     counter is an atomic word inside a block owned by a single writer
//     thread, padded so two threads never share a cache line.
//  2. Counters that fire on every optimistic read or hazard-pointer
//     publish are gated behind one global Enabled flag — a single
//     predictable branch when observability is off (zeroalloc_test.go and
//     the BENCH_2-vs-BENCH_1 ratio keep this honest). Cold counters
//     (allocs, retires, recycle passes) are always on, which is what makes
//     live Stats() aggregation race-free.
//  3. Aggregation never stops writers: readers sum the per-thread atomics
//     on demand. Each individual counter is exact; a cross-counter
//     snapshot may be torn by in-flight operations, so gauges derived from
//     counter pairs (e.g. retired-but-unreclaimed backlog) are approximate
//     under concurrency. See DESIGN.md "Observability".
package obs

import "sync/atomic"

// Counter indexes one of the per-thread counters in a PerThread block.
type Counter int

// The per-thread counter set. Hot counters (Ops, WarningChecks,
// HPPublishes) are only maintained while Enabled; the rest are always on.
const (
	// Ops counts completed data-structure operations (fed by the driver
	// that owns the thread: harness workers, oastress loops).
	Ops Counter = iota
	// Allocs counts successful slot allocations.
	Allocs
	// Retires counts retire calls issued by the data structure.
	Retires
	// Recycled counts slots made available for reallocation.
	Recycled
	// ReRetired counts slots deferred to a later phase/scan because a
	// hazard pointer (or anchor) protected them.
	ReRetired
	// WarningChecks counts executions of the Algorithm 1 read barrier.
	WarningChecks
	// Warnings counts warning checks that observed the bit set.
	Warnings
	// Restarts counts operation restarts forced by the scheme.
	Restarts
	// DrainPasses counts Recycling calls that proceeded to drain the
	// processing pool (Algorithm 6 reaching its scan+drain half).
	DrainPasses
	// HPPublishes counts hazard-pointer publications (Algorithms 2 and 3).
	HPPublishes

	// NumCounters is the size of a PerThread counter block.
	NumCounters
)

var counterNames = [NumCounters]string{
	"ops", "allocs", "retires", "recycled", "re_retired",
	"warning_checks", "warnings", "restarts", "drain_passes", "hp_publishes",
}

// String returns the snake_case export name of the counter.
func (c Counter) String() string { return counterNames[c] }

// enabled gates the hot-path counters. It is read with a single atomic
// load (a plain MOV on x86) per instrumentation site; flip it only while
// the workers that feed the counters are quiescent.
var enabled atomic.Bool

// Enabled reports whether hot-path counters are being maintained.
func Enabled() bool { return enabled.Load() }

// SetEnabled turns hot-path counters on or off. Call it before starting
// worker goroutines; toggling mid-run only affects which increments are
// counted, never safety.
func SetEnabled(v bool) { enabled.Store(v) }

// PerThread is one thread's cache-padded counter block. All fields are
// atomics so any goroutine may read them while the owner increments;
// increments are uncontended (single writer) so the atomic adds stay in
// the owner's cache line.
type PerThread struct {
	c [NumCounters]atomic.Uint64
	// localRetired is a gauge: slots currently buffered in the thread's
	// local retire block, stored by the owner after each retire/flush.
	localRetired atomic.Uint64
	_            [40]byte // pad the block to 128 bytes (2 cache lines)
}

// Inc adds 1 to counter i.
func (p *PerThread) Inc(i Counter) { p.c[i].Add(1) }

// Add adds n to counter i.
func (p *PerThread) Add(i Counter, n uint64) { p.c[i].Add(n) }

// Load returns counter i.
func (p *PerThread) Load(i Counter) uint64 { return p.c[i].Load() }

// Store sets counter i to v. Drivers that already keep a local operation
// count use it to publish the running total every few hundred operations
// instead of paying an atomic add per operation.
func (p *PerThread) Store(i Counter, v uint64) { p.c[i].Store(v) }

// SetLocalRetired records the thread's local retired-slot gauge.
func (p *PerThread) SetLocalRetired(n uint64) { p.localRetired.Store(n) }

// LocalRetired returns the thread's local retired-slot gauge.
func (p *PerThread) LocalRetired() uint64 { return p.localRetired.Load() }

// ThreadStats is a fixed array of per-thread counter blocks, allocated
// contiguously so blocks are padded against each other.
type ThreadStats struct {
	blocks []PerThread
}

// NewThreadStats allocates blocks for n threads.
func NewThreadStats(n int) *ThreadStats {
	if n < 1 {
		n = 1
	}
	return &ThreadStats{blocks: make([]PerThread, n)}
}

// Threads returns the number of per-thread blocks.
func (ts *ThreadStats) Threads() int { return len(ts.blocks) }

// At returns thread i's block.
func (ts *ThreadStats) At(i int) *PerThread { return &ts.blocks[i] }

// Totals sums every counter across threads without stopping writers.
func (ts *ThreadStats) Totals() [NumCounters]uint64 {
	var out [NumCounters]uint64
	for i := range ts.blocks {
		for c := Counter(0); c < NumCounters; c++ {
			out[c] += ts.blocks[i].c[c].Load()
		}
	}
	return out
}

// Total sums one counter across threads.
func (ts *ThreadStats) Total(c Counter) uint64 {
	var n uint64
	for i := range ts.blocks {
		n += ts.blocks[i].c[c].Load()
	}
	return n
}

// TotalLocalRetired sums the per-thread local retired gauges.
func (ts *ThreadStats) TotalLocalRetired() uint64 {
	var n uint64
	for i := range ts.blocks {
		n += ts.blocks[i].localRetired.Load()
	}
	return n
}

// Registrar is implemented by components (scheme managers, structure
// wrappers) that can register their own metric sources with a Registry.
type Registrar interface {
	RegisterObs(r *Registry)
}
