package obs

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/metrics"
)

// WritePrometheus renders every registered source in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, c := range r.counters {
		p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", c.name, c.help, c.name, c.name, c.fn())
	}
	for _, g := range r.gauges {
		p("# HELP %s %s\n# TYPE %s gauge\n%s %s\n", g.name, g.help, g.name, g.name, fmtFloat(g.fn()))
	}
	for _, vc := range r.vecCounters {
		p("# HELP %s %s\n# TYPE %s counter\n", vc.name, vc.help, vc.name)
		for i := 0; i < vc.n; i++ {
			p("%s{%s=%q} %d\n", vc.name, vc.label, strconv.Itoa(i), vc.fn(i))
		}
	}
	for _, vg := range r.vecGauges {
		p("# HELP %s %s\n# TYPE %s gauge\n", vg.name, vg.help, vg.name)
		for i := 0; i < vg.n; i++ {
			p("%s{%s=%q} %s\n", vg.name, vg.label, strconv.Itoa(i), fmtFloat(vg.fn(i)))
		}
	}
	for _, te := range r.threads {
		for c := Counter(0); c < NumCounters; c++ {
			name := te.prefix + "_" + c.String() + "_total"
			p("# HELP %s per-thread %s counter\n# TYPE %s counter\n", name, c.String(), name)
			for i := 0; i < te.ts.Threads(); i++ {
				p("%s{thread=%q} %d\n", name, strconv.Itoa(i), te.ts.At(i).Load(c))
			}
		}
		name := te.prefix + "_local_retired_slots"
		p("# HELP %s slots buffered in the thread's local retire block\n# TYPE %s gauge\n", name, name)
		for i := 0; i < te.ts.Threads(); i++ {
			p("%s{thread=%q} %d\n", name, strconv.Itoa(i), te.ts.At(i).LocalRetired())
		}
	}
	for _, he := range r.hists {
		p("# HELP %s %s\n# TYPE %s histogram\n", he.name, he.help, he.name)
		promHist(p, he.name, "", he.h)
	}
	for _, vh := range r.vecHists {
		p("# HELP %s %s\n# TYPE %s histogram\n", vh.name, vh.help, vh.name)
		for i := 0; i < vh.n; i++ {
			promHist(p, vh.name, vh.label+"="+strconv.Quote(strconv.Itoa(i))+",", vh.fn(i))
		}
	}
	return err
}

// promHist renders one histogram's bucket/sum/count series. labels is
// either empty or a `label="v",` prefix spliced before the le label.
func promHist(p func(format string, args ...any), name, labels string, h *metrics.Histogram) {
	snap := h.Snapshot()
	var cum uint64
	// The final log₂ bucket absorbs the tail, so it has no finite
	// upper edge; it is folded into +Inf below.
	for b := 0; b < metrics.Buckets-1; b++ {
		cum += snap.Counts[b]
		// Bucket b holds samples with bits.Len64(ns) == b, i.e.
		// ns <= 2^b - 1; the edge is exported in seconds.
		le := float64(uint64(1)<<uint(b)-1) / 1e9
		p("%s_bucket{%sle=%q} %d\n", name, labels, fmtFloat(le), cum)
	}
	p("%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, snap.Count)
	if labels == "" {
		p("%s_sum %s\n%s_count %d\n", name, fmtFloat(float64(snap.Sum)/1e9), name, snap.Count)
	} else {
		l := labels[:len(labels)-1] // drop the trailing comma
		p("%s_sum{%s} %s\n%s_count{%s} %d\n", name, l, fmtFloat(float64(snap.Sum)/1e9), name, l, snap.Count)
	}
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
