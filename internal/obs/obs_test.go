package obs

import (
	"sync"
	"testing"
	"unsafe"
)

// Per-thread blocks must not share cache lines: the struct is padded to a
// multiple of 128 bytes (two lines, covering adjacent-line prefetch).
func TestPerThreadPadding(t *testing.T) {
	if s := unsafe.Sizeof(PerThread{}); s%128 != 0 {
		t.Fatalf("PerThread is %d bytes, want a multiple of 128", s)
	}
}

func TestCounterNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < NumCounters; c++ {
		n := c.String()
		if n == "" {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[n] {
			t.Fatalf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
}

// Aggregation runs while writers hammer their blocks; with the race
// detector on, this test is the proof that live Stats scraping is safe.
// Totals observed mid-flight must be monotonic (each counter is a sum of
// monotonic atomics), and after the writers join the totals are exact.
func TestConcurrentAggregation(t *testing.T) {
	const (
		writers = 4
		perOp   = 10000
	)
	ts := NewThreadStats(writers)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Reader: aggregate continuously, checking monotonicity.
	var readerWG sync.WaitGroup
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		var prev [NumCounters]uint64
		for {
			tot := ts.Totals()
			for c := Counter(0); c < NumCounters; c++ {
				if tot[c] < prev[c] {
					t.Errorf("counter %v went backwards: %d -> %d", c, prev[c], tot[c])
					return
				}
			}
			prev = tot
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			b := ts.At(w)
			for i := 0; i < perOp; i++ {
				b.Inc(Allocs)
				b.Add(Retires, 2)
				b.Inc(Restarts)
				b.SetLocalRetired(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := ts.Total(Allocs); got != writers*perOp {
		t.Fatalf("Allocs total = %d, want %d", got, writers*perOp)
	}
	if got := ts.Total(Retires); got != 2*writers*perOp {
		t.Fatalf("Retires total = %d, want %d", got, 2*writers*perOp)
	}
	if got := ts.Totals()[Restarts]; got != writers*perOp {
		t.Fatalf("Restarts total = %d, want %d", got, writers*perOp)
	}
	if got := ts.TotalLocalRetired(); got != uint64(writers*(perOp-1)) {
		t.Fatalf("TotalLocalRetired = %d, want %d", got, writers*(perOp-1))
	}
}

func TestEnabledToggle(t *testing.T) {
	if Enabled() {
		t.Fatal("hot-path counters enabled by default")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("SetEnabled(true) not observed")
	}
	SetEnabled(false)
	if Enabled() {
		t.Fatal("SetEnabled(false) not observed")
	}
}

func TestStorePublishesRunningCount(t *testing.T) {
	ts := NewThreadStats(2)
	ts.At(0).Store(Ops, 300)
	ts.At(1).Store(Ops, 200)
	ts.At(0).Store(Ops, 500) // running count replaces, never adds
	if got := ts.Total(Ops); got != 700 {
		t.Fatalf("Total(Ops) = %d, want 700", got)
	}
}
