package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// TestRegistryTrace covers recorder registration: the merged timeline
// offsets thread ids per recorder, trace_events_total is registered exactly
// once and sums across recorders, and both text renderings carry it.
func TestRegistryTrace(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)

	reg := NewRegistry()
	a := trace.NewRecorder(2, 8)
	b := trace.NewRecorder(1, 8)
	reg.Trace(a)
	reg.Trace(b)

	a.Ring(0).Record(trace.EvPhase, 3)
	a.Ring(1).Record(trace.EvRestart, uint64(trace.CauseRead))
	b.Ring(0).Record(trace.EvDrain, trace.DrainPayload(5, 2))

	if got := reg.TraceTotal(); got != 3 {
		t.Fatalf("TraceTotal = %d, want 3", got)
	}

	evs := reg.TraceEvents()
	if len(evs) != 3 {
		t.Fatalf("TraceEvents returned %d events, want 3", len(evs))
	}
	// Recorder b's single thread must land on track 2 (after a's two).
	var sawOffset bool
	for _, e := range evs {
		if e.Kind == trace.EvDrain && e.TID == 2 {
			sawOffset = true
		}
	}
	if !sawOffset {
		t.Fatalf("second recorder's thread not offset: %+v", evs)
	}

	var prom strings.Builder
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "trace_events_total 3") {
		t.Fatalf("Prometheus output missing trace_events_total:\n%s", prom.String())
	}
	if strings.Count(prom.String(), "# TYPE trace_events_total") != 1 {
		t.Fatalf("trace_events_total registered more than once:\n%s", prom.String())
	}

	var js strings.Builder
	if err := reg.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(js.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["trace_events_total"] != 3 {
		t.Fatalf("JSON counters = %v, want trace_events_total 3", doc.Counters)
	}
}

// TestTraceEndpoint exercises the /trace route in both formats against a
// live handler.
func TestTraceEndpoint(t *testing.T) {
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)

	reg := NewRegistry()
	rec := trace.NewRecorder(1, 8)
	reg.Trace(rec)
	rec.Ring(0).Record(trace.EvPhase, 7)
	rec.Ring(0).Record(trace.EvRefill, 1)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	get := func(path string) (string, string) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, rerr := resp.Body.Read(buf)
			b.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		return b.String(), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/trace")
	if ctype != "application/json" {
		t.Fatalf("/trace content-type = %q", ctype)
	}
	var chrome struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("/trace does not parse as chrome trace: %v\n%s", err, body)
	}
	if len(chrome.TraceEvents) != 2 || chrome.TraceEvents[0].Name != "phase" || chrome.TraceEvents[0].Ph != "i" {
		t.Fatalf("unexpected chrome events: %+v", chrome.TraceEvents)
	}

	body, ctype = get("/trace?format=jsonl")
	if ctype != "application/x-ndjson" {
		t.Fatalf("/trace?format=jsonl content-type = %q", ctype)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl line count = %d, want 2\n%s", len(lines), body)
	}
	for _, ln := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(ln), &obj); err != nil {
			t.Fatalf("bad jsonl line %q: %v", ln, err)
		}
		for _, k := range []string{"ts_ns", "tid", "seq", "kind"} {
			if _, ok := obj[k]; !ok {
				t.Fatalf("jsonl line %q missing %q", ln, k)
			}
		}
	}
}

// TestJSONHistogramPercentiles locks the additive percentile fields of the
// /stats.json histogram block.
func TestJSONHistogramPercentiles(t *testing.T) {
	reg := NewRegistry()
	var h metrics.Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	reg.Histogram("demo_latency_seconds", "op latency", &h)

	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Histograms map[string]map[string]uint64 `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatal(err)
	}
	jh, ok := doc.Histograms["demo_latency_seconds"]
	if !ok {
		t.Fatalf("histogram missing from JSON: %s", b.String())
	}
	for _, k := range []string{"count", "sum_ns", "mean_ns", "max_ns", "p50_ns", "p90_ns", "p99_ns", "p999_ns"} {
		if _, present := jh[k]; !present {
			t.Fatalf("histogram block missing %q: %v", k, jh)
		}
	}
	if jh["count"] != 1000 || jh["p50_ns"] == 0 || jh["p99_ns"] < jh["p50_ns"] {
		t.Fatalf("implausible percentiles: %v", jh)
	}
}
