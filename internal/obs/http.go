package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// HandlerFor builds the observability HTTP handler around a registry
// source. The indirection lets a long-running process (oastress -all)
// swap registries between runs while the listener stays up; get may
// return nil, which renders as 503 until a registry is installed.
//
// Routes:
//
//	/metrics       Prometheus text exposition
//	/stats.json    JSON snapshot of every source
//	/trace         protocol event trace: Chrome trace_event JSON by
//	               default (load in chrome://tracing or Perfetto),
//	               ?format=jsonl for one JSON object per event line
//	/debug/pprof/  the standard net/http/pprof handlers
//
// Routes registered on the active registry with Registry.Handle (the
// server's /debug/slowlog) are served before the 404 fallback.
func HandlerFor(get func() *Registry) http.Handler {
	mux := http.NewServeMux()
	withReg := func(serve func(r *Registry, w http.ResponseWriter, req *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			r := get()
			if r == nil {
				http.Error(w, "no registry active", http.StatusServiceUnavailable)
				return
			}
			serve(r, w, req)
		}
	}
	mux.HandleFunc("/metrics", withReg(func(r *Registry, w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	}))
	mux.HandleFunc("/stats.json", withReg(func(r *Registry, w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	}))
	mux.HandleFunc("/trace", withReg(func(r *Registry, w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "jsonl" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = r.WriteTraceJSONL(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteTraceChrome(w)
	}))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if r := get(); r != nil {
			if h := r.route(req.URL.Path); h != nil {
				h.ServeHTTP(w, req)
				return
			}
		}
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprint(w, "oamem observability: /metrics /stats.json /trace /debug/pprof/")
		if r := get(); r != nil {
			for _, p := range r.Routes() {
				fmt.Fprint(w, " "+p)
			}
		}
		fmt.Fprint(w, "\n")
	})
	return mux
}

// Handler serves this registry on the observability routes.
func (r *Registry) Handler() http.Handler {
	return HandlerFor(func() *Registry { return r })
}
