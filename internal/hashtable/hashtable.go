// Package hashtable implements Michael's lock-free hash table (SPAA 2002):
// a fixed array of buckets, each an independent Harris-Michael linked list,
// reusing the per-scheme list engines of package list. The paper evaluates
// it with a load factor of 0.75, making the average bucket list shorter
// than one node — operations are extremely short, which is the regime where
// per-operation costs (EBR's announcements) dominate and per-read costs
// (HP's fences) matter less (Figure 1, "Hash").
//
// The bucket count is fixed at construction (sized from the expected
// element count and load factor), as in the paper's benchmark. Each bucket
// owns a sentinel head node that is never retired.
package hashtable

import (
	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hpscheme"
	"repro/internal/list"
	"repro/internal/norecl"
	"repro/internal/obs"
	"repro/internal/smr"
)

// DefaultLoadFactor is the paper's benchmark load factor.
const DefaultLoadFactor = 0.75

// Buckets returns the bucket count for an expected size at a load factor,
// rounded up to a power of two so that indexing is a mask.
func Buckets(expected int, loadFactor float64) int {
	if loadFactor <= 0 {
		loadFactor = DefaultLoadFactor
	}
	want := int(float64(expected)/loadFactor) + 1
	b := 1
	for b < want {
		b <<= 1
	}
	return b
}

// hash is Fibonacci multiplicative hashing onto the bucket mask.
func hash(key uint64, mask uint32) uint32 {
	return uint32((key*0x9E3779B97F4A7C15)>>33) & mask
}

// newHeads allocates one sentinel per bucket via the engine's setup thread.
func newHeads(n int, alloc func() uint32) []uint32 {
	heads := make([]uint32, n)
	for i := range heads {
		heads[i] = alloc()
	}
	return heads
}

// OA is the hash table under optimistic access.
type OA struct {
	e     *list.OAEngine
	heads []uint32
	mask  uint32
}

// NewOA builds a table with expected elements; cfg.Capacity must include
// the bucket sentinels (use Buckets to size them) plus the live set and δ.
func NewOA(cfg core.Config, expected int) *OA {
	n := Buckets(expected, DefaultLoadFactor)
	cfg.Capacity += n
	e := list.NewOAEngine(cfg)
	return &OA{e: e, heads: newHeads(n, e.NewHead), mask: uint32(n - 1)}
}

// Engine exposes the underlying list engine.
func (h *OA) Engine() *list.OAEngine { return h.e }

// Scheme implements smr.Set.
func (h *OA) Scheme() smr.Scheme { return smr.OA }

// Stats implements smr.Set.
func (h *OA) Stats() smr.Stats { return h.e.Manager().Stats() }

// RegisterObs implements obs.Registrar by forwarding to the core manager.
func (h *OA) RegisterObs(reg *obs.Registry) { h.e.Manager().RegisterObs(reg) }

// Session implements smr.Set.
func (h *OA) Session(tid int) smr.Session { return &oaSession{h: h, t: h.e.Thread(tid)} }

type oaSession struct {
	h *OA
	t *list.OAThread
}

func (s *oaSession) Insert(key uint64) bool {
	return s.t.InsertAt(s.h.heads[hash(key, s.h.mask)], key)
}
func (s *oaSession) Delete(key uint64) bool {
	return s.t.DeleteAt(s.h.heads[hash(key, s.h.mask)], key)
}
func (s *oaSession) Contains(key uint64) bool {
	return s.t.ContainsAt(s.h.heads[hash(key, s.h.mask)], key)
}

// HP is the hash table under hazard pointers.
type HP struct {
	e     *list.HPEngine
	heads []uint32
	mask  uint32
}

// NewHP builds a table with expected elements.
func NewHP(cfg hpscheme.Config, expected int) *HP {
	n := Buckets(expected, DefaultLoadFactor)
	cfg.Capacity += n
	e := list.NewHPEngine(cfg)
	return &HP{e: e, heads: newHeads(n, e.NewHead), mask: uint32(n - 1)}
}

// Engine exposes the underlying list engine.
func (h *HP) Engine() *list.HPEngine { return h.e }

// Scheme implements smr.Set.
func (h *HP) Scheme() smr.Scheme { return smr.HP }

// Stats implements smr.Set.
func (h *HP) Stats() smr.Stats { return h.e.Manager().Stats() }

// RegisterObs implements obs.Registrar by forwarding to the scheme manager.
func (h *HP) RegisterObs(reg *obs.Registry) { h.e.Manager().RegisterObs(reg) }

// Session implements smr.Set.
func (h *HP) Session(tid int) smr.Session { return &hpSession{h: h, t: h.e.Thread(tid)} }

type hpSession struct {
	h *HP
	t *list.HPThread
}

func (s *hpSession) Insert(key uint64) bool {
	return s.t.InsertAt(s.h.heads[hash(key, s.h.mask)], key)
}
func (s *hpSession) Delete(key uint64) bool {
	return s.t.DeleteAt(s.h.heads[hash(key, s.h.mask)], key)
}
func (s *hpSession) Contains(key uint64) bool {
	return s.t.ContainsAt(s.h.heads[hash(key, s.h.mask)], key)
}

// EBR is the hash table under epoch-based reclamation.
type EBR struct {
	e     *list.EBREngine
	heads []uint32
	mask  uint32
}

// NewEBR builds a table with expected elements.
func NewEBR(cfg ebr.Config, expected int) *EBR {
	n := Buckets(expected, DefaultLoadFactor)
	cfg.Capacity += n
	e := list.NewEBREngine(cfg)
	return &EBR{e: e, heads: newHeads(n, e.NewHead), mask: uint32(n - 1)}
}

// Engine exposes the underlying list engine.
func (h *EBR) Engine() *list.EBREngine { return h.e }

// Scheme implements smr.Set.
func (h *EBR) Scheme() smr.Scheme { return smr.EBR }

// Stats implements smr.Set.
func (h *EBR) Stats() smr.Stats { return h.e.Manager().Stats() }

// RegisterObs implements obs.Registrar by forwarding to the scheme manager.
func (h *EBR) RegisterObs(reg *obs.Registry) { h.e.Manager().RegisterObs(reg) }

// Session implements smr.Set.
func (h *EBR) Session(tid int) smr.Session { return &ebrSession{h: h, t: h.e.Thread(tid)} }

type ebrSession struct {
	h *EBR
	t *list.EBRThread
}

func (s *ebrSession) Insert(key uint64) bool {
	return s.t.InsertAt(s.h.heads[hash(key, s.h.mask)], key)
}
func (s *ebrSession) Delete(key uint64) bool {
	return s.t.DeleteAt(s.h.heads[hash(key, s.h.mask)], key)
}
func (s *ebrSession) Contains(key uint64) bool {
	return s.t.ContainsAt(s.h.heads[hash(key, s.h.mask)], key)
}

// NoRecl is the hash table without reclamation.
type NoRecl struct {
	e     *list.NoReclEngine
	heads []uint32
	mask  uint32
}

// NewNoRecl builds a table with expected elements.
func NewNoRecl(cfg norecl.Config, expected int) *NoRecl {
	n := Buckets(expected, DefaultLoadFactor)
	cfg.Capacity += n
	e := list.NewNoReclEngine(cfg)
	return &NoRecl{e: e, heads: newHeads(n, e.NewHead), mask: uint32(n - 1)}
}

// Engine exposes the underlying list engine.
func (h *NoRecl) Engine() *list.NoReclEngine { return h.e }

// Scheme implements smr.Set.
func (h *NoRecl) Scheme() smr.Scheme { return smr.NoRecl }

// Stats implements smr.Set.
func (h *NoRecl) Stats() smr.Stats { return h.e.Manager().Stats() }

// RegisterObs implements obs.Registrar by forwarding to the scheme manager.
func (h *NoRecl) RegisterObs(reg *obs.Registry) { h.e.Manager().RegisterObs(reg) }

// Session implements smr.Set.
func (h *NoRecl) Session(tid int) smr.Session { return &noreclSession{h: h, t: h.e.Thread(tid)} }

type noreclSession struct {
	h *NoRecl
	t *list.NoReclThread
}

func (s *noreclSession) Insert(key uint64) bool {
	return s.t.InsertAt(s.h.heads[hash(key, s.h.mask)], key)
}
func (s *noreclSession) Delete(key uint64) bool {
	return s.t.DeleteAt(s.h.heads[hash(key, s.h.mask)], key)
}
func (s *noreclSession) Contains(key uint64) bool {
	return s.t.ContainsAt(s.h.heads[hash(key, s.h.mask)], key)
}

// An Anchors hash table is intentionally absent: the paper does not
// implement one because bucket lists average under one node, where anchors'
// amortization has nothing to amortize (§5).

// PauseReport renders the OA reclamation-pause histogram (see package
// metrics); used by oabench's pause experiment.
func (h *OA) PauseReport() string { return h.e.Manager().PhasePauses().String() }
