package hashtable_test

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dstest"
	"repro/internal/ebr"
	"repro/internal/hashtable"
	"repro/internal/hpscheme"
	"repro/internal/norecl"
	"repro/internal/smr"
)

func factories() map[string]struct {
	mk     dstest.Factory
	scheme smr.Scheme
} {
	const capacity = 1 << 15
	const expected = 1024
	return map[string]struct {
		mk     dstest.Factory
		scheme smr.Scheme
	}{
		"NoRecl": {
			mk: func(threads int) smr.Set {
				return hashtable.NewNoRecl(norecl.Config{MaxThreads: threads, Capacity: capacity}, expected)
			},
			scheme: smr.NoRecl,
		},
		"OA": {
			mk: func(threads int) smr.Set {
				return hashtable.NewOA(core.Config{MaxThreads: threads, Capacity: capacity, LocalPool: 16}, expected)
			},
			scheme: smr.OA,
		},
		"HP": {
			mk: func(threads int) smr.Set {
				return hashtable.NewHP(hpscheme.Config{MaxThreads: threads, Capacity: capacity, ScanThreshold: 64}, expected)
			},
			scheme: smr.HP,
		},
		"EBR": {
			mk: func(threads int) smr.Set {
				return hashtable.NewEBR(ebr.Config{MaxThreads: threads, Capacity: capacity, OpsPerScan: 32}, expected)
			},
			scheme: smr.EBR,
		},
	}
}

func TestHashSequential(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) { dstest.RunSequentialSuite(t, f.mk) })
	}
}

func TestHashConcurrent(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) { dstest.RunConcurrentSuite(t, f.mk) })
	}
}

func TestHashStats(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) { dstest.RunStats(t, f.mk, f.scheme) })
	}
}

func TestBucketsSizing(t *testing.T) {
	cases := []struct {
		expected int
		lf       float64
		min      int
	}{
		{10000, 0.75, 13334},
		{1, 0.75, 2},
		{100, 0, 134}, // 0 → default load factor
	}
	for _, c := range cases {
		got := hashtable.Buckets(c.expected, c.lf)
		if got < c.min {
			t.Fatalf("Buckets(%d, %v) = %d, want >= %d", c.expected, c.lf, got, c.min)
		}
		if got&(got-1) != 0 {
			t.Fatalf("Buckets(%d, %v) = %d, not a power of two", c.expected, c.lf, got)
		}
	}
}

// Property: table behaviour is invariant under the bucket distribution —
// keys that collide modulo the mask still behave as a set.
func TestHashCollisionsQuick(t *testing.T) {
	h := hashtable.NewOA(core.Config{MaxThreads: 1, Capacity: 1 << 14, LocalPool: 16}, 64)
	s := h.Session(0)
	model := map[uint64]bool{}
	f := func(base uint64, stride uint8, op uint8) bool {
		// Strided keys produce deliberate bucket collisions.
		k := base + uint64(stride)*64
		switch op % 3 {
		case 0:
			want := !model[k]
			if s.Insert(k) != want {
				return false
			}
			model[k] = true
		case 1:
			want := model[k]
			if s.Delete(k) != want {
				return false
			}
			delete(model, k)
		default:
			if s.Contains(k) != model[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

// The paper's hash benchmark regime: bucket lists shorter than one node;
// reclamation must still engage under churn.
func TestHashOAChurnRecycles(t *testing.T) {
	h := hashtable.NewOA(core.Config{MaxThreads: 1, Capacity: 2048, LocalPool: 8}, 256)
	s := h.Session(0)
	for i := 0; i < 30000; i++ {
		k := uint64(i%512) + 1
		s.Insert(k)
		s.Delete(k)
	}
	st := h.Stats()
	if st.Phases == 0 || st.Recycled == 0 {
		t.Fatalf("hash/OA reclamation inactive: %+v", st)
	}
}

func TestHashLinearizability(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) { dstest.RunLinearizability(t, f.mk) })
	}
}
