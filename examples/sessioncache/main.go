// Session cache: the paper's motivating hash-table regime.
//
// A web frontend tracks live session tokens in a lock-free hash set:
// logins insert, logouts delete, and every request performs a read-mostly
// validity check. Operations are extremely short, which is exactly the
// regime where reclamation overhead dominates (paper §5, Figure 1 "Hash").
//
// The example runs the same token-churn workload under OA, HP, and EBR and
// prints the throughput of each, reproducing the paper's finding in
// miniature: OA tracks NoRecl, EBR pays its per-operation epoch
// announcement, HP pays its per-read fences.
//
// Run with:
//
//	go run ./examples/sessioncache
package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/oamem"
)

const (
	workers    = 4
	liveTokens = 16_384
	runFor     = 300 * time.Millisecond
)

func workload(set *oamem.Structure) float64 {
	// Prefill: the steady-state population of live sessions. Release the
	// lease before the workers start so all slots are free for them.
	s0, err := set.Acquire()
	if err != nil {
		panic(err)
	}
	for tok := uint64(1); tok <= liveTokens; tok++ {
		s0.Insert(tok)
	}
	s0.Release()

	var stop atomic.Bool
	var total atomic.Uint64
	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s, err := set.Acquire()
			if err != nil {
				panic(err) // cannot happen: workers == session slots
			}
			defer s.Release()
			rng := uint64(id)*0x9E3779B97F4A7C15 + 1
			n := uint64(0)
			login := true
			for !stop.Load() {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				tok := rng%(2*liveTokens) + 1
				switch {
				case rng>>60 < 13: // ~80%: request validation
					s.Contains(tok)
				case login: // ~10%: login
					s.Insert(tok)
					login = false
				default: // ~10%: logout
					s.Delete(tok)
					login = true
				}
				n++
			}
			total.Add(n)
		}(id)
	}
	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	return float64(total.Load()) / runFor.Seconds() / 1e6
}

func main() {
	schemes := []oamem.Scheme{oamem.NoRecl, oamem.OA, oamem.HP, oamem.EBR}

	fmt.Printf("session-cache: %d workers, %d live tokens, %v per scheme\n\n",
		workers, liveTokens, runFor)
	var base float64
	for _, scheme := range schemes {
		set, err := oamem.HashSet(
			oamem.WithScheme(scheme),
			oamem.WithThreads(workers),
			oamem.WithCapacity(1<<16),
			oamem.WithExpected(2*liveTokens),
		)
		if err != nil {
			panic(err)
		}
		mops := workload(set)
		if scheme == oamem.NoRecl {
			base = mops
		}
		st := set.Stats()
		fmt.Printf("%-8v %7.2f Mops/s (%.2fx of NoRecl)  recycled=%-8d phases=%d\n",
			scheme, mops, mops/base, st.Recycled, st.Phases)
	}
	fmt.Println("\nexpected shape (paper Fig. 1, Hash): OA ≈ NoRecl; HP and EBR behind.")
}
