// Quickstart: a lock-free set under the optimistic access scheme.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"repro/oamem"
)

func main() {
	const workers = 4

	// Capacity is the OA scheme's node budget: peak live set plus a
	// reclamation slack δ. Here: ≤ ~40k live keys + ~25k slack.
	set, err := oamem.HashSet(
		oamem.WithThreads(workers),
		oamem.WithCapacity(1<<16),
		oamem.WithExpected(40_000),
	)
	if err != nil {
		panic(err)
	}

	var wg sync.WaitGroup
	for id := 0; id < workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Lease one session per goroutine; Release returns the slot.
			s, err := set.Acquire()
			if err != nil {
				panic(err) // cannot happen: workers == session slots
			}
			defer s.Release()
			// Churn: cycle scratch keys through insert/delete so deleted
			// nodes flow through retire → phase → recycle. Allocations here
			// far exceed Capacity, which only works because the scheme
			// recycles.
			scratch := 1_000_000 + uint64(id)*10_000
			for i := uint64(0); i < 30_000; i++ {
				k := scratch + i%1_000
				s.Insert(k)
				s.Delete(k)
			}
			// Final pattern: keep the even half of this worker's range.
			base := uint64(id) * 10_000
			for i := uint64(1); i <= 10_000; i++ {
				s.Insert(base + i)
			}
			for i := uint64(1); i <= 10_000; i += 2 {
				s.Delete(base + i) // delete the odd half
			}
		}(id)
	}
	wg.Wait()

	probe, err := set.Acquire()
	if err != nil {
		panic(err)
	}
	defer probe.Release()
	present, absent := 0, 0
	for id := 0; id < workers; id++ {
		base := uint64(id) * 10_000
		for i := uint64(1); i <= 10_000; i++ {
			if probe.Contains(base + i) {
				present++
			} else {
				absent++
			}
		}
	}
	fmt.Printf("present=%d absent=%d (want 20000/20000)\n", present, absent)

	st := set.Stats()
	fmt.Printf("allocations=%d retires=%d recycled=%d phases=%d restarts=%d\n",
		st.Allocs, st.Retires, st.Recycled, st.Phases, st.Restarts)
	fmt.Println("deleted nodes were recycled through the optimistic access pipeline —")
	fmt.Println("no garbage collector involvement, no per-read fences.")
}
