// Stuck thread: the lock-freedom property that motivates the paper.
//
// Epoch-based reclamation is fast but not lock-free: one preempted,
// swapped-out, or crashed thread freezes the epoch and memory reclamation
// stops system-wide (paper §1, §6). The optimistic access scheme keeps
// reclaiming: a stuck thread's hazard pointers pin at most a handful of
// nodes, and its un-acknowledged warning bit only means *it* will restart
// when it wakes.
//
// This example parks one worker mid-operation under both schemes and
// measures how much memory churn the surviving workers can recycle. Under
// OA the stuck worker holds a *leased* session (the session registry the
// public oamem.Acquire API rides on): its lease is simply never returned,
// which costs one slot — it never blocks the other workers or the
// reclamation pipeline.
//
// Run with:
//
//	go run ./examples/stuckthread
package main

import (
	"fmt"
	"sync"

	"repro/internal/arena"
	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hashtable"
	"repro/internal/smr"
)

const (
	workers = 3 // plus one stuck thread
	churn   = 150_000
)

// run drives churn through the surviving workers while one thread is
// stuck, and reports how many nodes the scheme managed to recycle. The
// session hook maps a worker to its per-thread handle and returns the
// matching release (a lease under OA, a no-op under EBR's fixed slots).
func run(name string, set smr.Set, park func(), session func(id int) (smr.Session, func())) {
	park() // one thread wedges mid-operation and never returns

	var wg sync.WaitGroup
	for id := 1; id <= workers; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			s, release := session(id)
			defer release()
			base := uint64(id) << 32
			for i := 0; i < churn; i++ {
				k := base + uint64(i%1024) + 1
				s.Insert(k)
				s.Delete(k)
			}
		}(id)
	}
	wg.Wait()
	st := set.Stats()
	fmt.Printf("%-4s retired=%-8d recycled=%-8d (%.1f%% reclaimed despite the stuck thread)\n",
		name, st.Retires, st.Recycled, 100*float64(st.Recycled)/float64(st.Retires))
}

func main() {
	fmt.Printf("churning %d insert/delete pairs on %d workers while one thread is stuck...\n\n",
		churn, workers)

	// --- OA: stuck thread parked mid-write-barrier — hazard pointers
	// published (Algorithm 2 prologue), warning bit never acknowledged.
	// Only the handful of nodes its hazard pointers pin stay unreclaimed.
	oaSet := hashtable.NewOA(core.Config{
		MaxThreads: workers + 1, Capacity: 1 << 16, LocalPool: 126,
	}, 4096)
	oaMgr := oaSet.Engine().Manager()
	run("OA", oaSet,
		func() {
			// The stuck thread leases a session like any oamem.Acquire
			// caller would... and never Releases it.
			th, err := oaMgr.AcquireThread()
			if err != nil {
				panic(err)
			}
			pinned := th.Alloc()
			th.ProtectCAS(arena.MakePtr(pinned), arena.NilPtr, arena.NilPtr)
			// ...and the thread never runs again.
		},
		func(int) (smr.Session, func()) {
			th, err := oaMgr.AcquireThread()
			if err != nil {
				panic(err)
			}
			return oaSet.Session(th.ID()), func() { oaMgr.ReleaseThread(th) }
		})

	// --- EBR: stuck thread parked inside an operation (its epoch
	// announcement is live and never retracted). The EBR engine has no
	// lease registry, so workers bind fixed slots the pre-leasing way.
	ebrSet := hashtable.NewEBR(ebr.Config{
		MaxThreads: workers + 1, Capacity: 1 << 16, OpsPerScan: 64,
	}, 4096)
	run("EBR", ebrSet,
		func() {
			th := ebrSet.Engine().Manager().Thread(0)
			th.OnOpStart() // announce an epoch and never finish the operation
		},
		func(id int) (smr.Session, func()) {
			return ebrSet.Session(id), func() {}
		})

	fmt.Println("\nexpected: OA reclaims essentially everything; EBR reclaims almost nothing")
	fmt.Println("(its epoch cannot advance past the stuck announcement). This is why the")
	fmt.Println("paper rejects EBR for lock-free settings despite its speed.")
}
