// Job index: an ordered skip-list index under constant churn.
//
// A scheduler keeps runnable job deadlines (encoded as uint64 timestamps)
// in a lock-free ordered set: producers insert new deadlines, and
// dispatchers find due jobs with an ordered RangeScan over the due window
// and fire (delete) them. This is the paper's skip-list regime — moderate
// operation length, low contention, complex multi-level updates (§5,
// Figure 1 "SkipList"): the normalized delete marks every level of a node
// in one CAS-executor list — plus this repository's range-scan extension,
// whose every hop is an optimistic read validated by the warning bit.
//
// Run with:
//
//	go run ./examples/jobindex
package main

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/oamem"
)

const (
	producers  = 2
	dispatches = 2
	runFor     = 300 * time.Millisecond
	maxBacklog = 50_000
)

func main() {
	set, err := oamem.Ordered(
		oamem.WithThreads(producers+dispatches),
		oamem.WithCapacity(80_000), // live backlog + reclamation slack δ
	)
	if err != nil {
		panic(err)
	}

	var clock atomic.Uint64 // synthetic deadline source
	clock.Store(1)
	var stop atomic.Bool
	var scheduled, fired atomic.Uint64

	var wg sync.WaitGroup
	// Producers schedule jobs at strictly increasing deadlines (with
	// per-producer low bits so keys never collide). They throttle when the
	// backlog nears the index's node budget — under OA the capacity is a
	// hard limit, so admission control belongs to the application.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			s, err := set.Acquire()
			if err != nil {
				panic(err) // cannot happen: goroutines == session slots
			}
			defer s.Release()
			for !stop.Load() {
				if scheduled.Load()-fired.Load() >= maxBacklog {
					runtime.Gosched()
					continue
				}
				deadline := clock.Add(1)<<8 | uint64(p)
				if s.Insert(deadline) {
					scheduled.Add(1)
				}
			}
		}(p)
	}
	// Dispatchers scan the due window in deadline order and fire the jobs
	// they find. The scan is weakly consistent — exactly right here: a job
	// inserted mid-scan is simply found by the next sweep.
	for d := 0; d < dispatches; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			// Leased sessions are scan-capable: RangeScan plus the set ops.
			s, err := set.Acquire()
			if err != nil {
				panic(err)
			}
			defer s.Release()
			due := make([]uint64, 0, 256)
			for !stop.Load() {
				now := clock.Load()
				due = due[:0]
				s.RangeScan(0, now<<8|0xFF, func(k uint64) bool {
					due = append(due, k)
					return len(due) < 256 // fire in batches
				})
				for _, k := range due {
					if s.Delete(k) { // losers of the race skip
						fired.Add(1)
					}
				}
			}
		}(d)
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()

	st := set.Stats()
	fmt.Printf("scheduled=%d fired=%d backlog=%d\n",
		scheduled.Load(), fired.Load(), scheduled.Load()-fired.Load())
	fmt.Printf("allocations=%d retires=%d recycled=%d reclamation phases=%d restarts=%d\n",
		st.Allocs, st.Retires, st.Recycled, st.Phases, st.Restarts)
	fmt.Printf("reclamation pauses: %s\n", set.Manager().PhasePauses().String())
	fmt.Println("fired jobs' nodes (multi-level!) were unlinked, retired and recycled")
	fmt.Println("by the optimistic access pipeline while producers kept inserting.")
}
