// Extension benchmarks beyond the paper's figures: the Michael-Scott
// queue, the Treiber stack, the key→value map and the ordered range scan,
// each under the schemes that support them. See EXPERIMENTS.md
// "Extensions".
package repro

import (
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/ebr"
	"repro/internal/hpscheme"
	"repro/internal/kvmap"
	"repro/internal/list"
	"repro/internal/mpmc"
	"repro/internal/norecl"
	"repro/internal/queue"
	"repro/internal/skiplist"
	"repro/internal/smr"
	"repro/internal/stack"
)

const extCapacity = 1 << 16

// BenchmarkExtQueue measures enqueue+dequeue pairs through the MS queue.
func BenchmarkExtQueue(b *testing.B) {
	mk := map[string]func() smr.Queue{
		"NoRecl": func() smr.Queue {
			return queue.NewNoRecl(norecl.Config{MaxThreads: 1, Capacity: extCapacity})
		},
		"OA": func() smr.Queue {
			return queue.NewOA(core.Config{MaxThreads: 1, Capacity: extCapacity})
		},
		"HP": func() smr.Queue {
			return queue.NewHP(hpscheme.Config{MaxThreads: 1, Capacity: extCapacity})
		},
		"EBR": func() smr.Queue {
			return queue.NewEBR(ebr.Config{MaxThreads: 1, Capacity: extCapacity})
		},
	}
	for _, name := range []string{"NoRecl", "OA", "HP", "EBR"} {
		b.Run(name, func(b *testing.B) {
			s := mk[name]().QueueSession(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Enqueue(uint64(i))
				s.Dequeue()
			}
		})
	}
}

// BenchmarkExtStack measures push+pop pairs through the Treiber stack.
func BenchmarkExtStack(b *testing.B) {
	mk := map[string]func() stack.Stack{
		"NoRecl": func() stack.Stack {
			return stack.NewNoRecl(norecl.Config{MaxThreads: 1, Capacity: extCapacity})
		},
		"OA": func() stack.Stack {
			return stack.NewOA(core.Config{MaxThreads: 1, Capacity: extCapacity})
		},
		"HP": func() stack.Stack {
			return stack.NewHP(hpscheme.Config{MaxThreads: 1, Capacity: extCapacity})
		},
		"EBR": func() stack.Stack {
			return stack.NewEBR(ebr.Config{MaxThreads: 1, Capacity: extCapacity})
		},
	}
	for _, name := range []string{"NoRecl", "OA", "HP", "EBR"} {
		b.Run(name, func(b *testing.B) {
			s := mk[name]().StackSession(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Push(uint64(i))
				s.Pop()
			}
		})
	}
}

// BenchmarkExtMap measures the map's four operations in a mixed loop.
func BenchmarkExtMap(b *testing.B) {
	m := kvmap.New(core.Config{MaxThreads: 1, Capacity: extCapacity}, 4096)
	s := m.Session(0)
	for k := uint64(1); k <= 4096; k++ {
		s.PutIfAbsent(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%4096) + 1
		switch i & 3 {
		case 0:
			s.Get(k)
		case 1:
			s.Put(k, uint64(i))
		case 2:
			s.Get(k + 4096)
		default:
			s.PutIfAbsent(k, uint64(i))
		}
	}
}

// BenchmarkExtRangeScan measures the ordered scan over a 10k-key index.
func BenchmarkExtRangeScan(b *testing.B) {
	sl := skiplist.NewOA(core.Config{MaxThreads: 1, Capacity: extCapacity})
	s := sl.ScanSession(0)
	for k := uint64(1); k <= 10000; k++ {
		s.Insert(k)
	}
	b.ResetTimer()
	visited := 0
	for i := 0; i < b.N; i++ {
		s.RangeScan(1, 10000, func(uint64) bool { visited++; return true })
	}
	b.StopTimer()
	if visited != b.N*10000 {
		b.Fatalf("visited %d keys, want %d", visited, b.N*10000)
	}
	b.ReportMetric(float64(visited)/float64(b.N), "keys/scan")
}

// BenchmarkExtMPMC measures the bounded request ring the batched server
// runs on: multi-word payload enqueue+dequeue pairs through one queue of
// an OA-managed group, single-threaded (the per-op floor) and with the
// parallel driver contending producers and consumers on one ring.
func BenchmarkExtMPMC(b *testing.B) {
	b.Run("pair", func(b *testing.B) {
		g := mpmc.NewGroup(core.Config{MaxThreads: 1, Capacity: extCapacity}, 1, 1024)
		q, s := g.Queue(0), g.Session(0)
		var p mpmc.Payload
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p[0] = uint64(i)
			s.TryEnqueue(q, &p)
			s.Dequeue(q, &p)
		}
	})
	b.Run("contended", func(b *testing.B) {
		g := mpmc.NewGroup(core.Config{MaxThreads: 64, Capacity: extCapacity}, 1, 1024)
		q := g.Queue(0)
		b.RunParallel(func(pb *testing.PB) {
			s, err := g.Acquire()
			if err != nil {
				b.Error(err)
				return
			}
			defer s.Release()
			var p mpmc.Payload
			for pb.Next() {
				if s.TryEnqueue(q, &p) {
					s.Dequeue(q, &p)
				}
			}
		})
	})
}

// BenchmarkAllocatorSanity reproduces the paper's §5 sanity check that the
// object-pool allocator performs at least as well as the system allocator:
// node churn through the shared pool vs native Go allocation of equivalent
// nodes (which also drags the garbage collector into the loop).
func BenchmarkAllocatorSanity(b *testing.B) {
	b.Run("pool", func(b *testing.B) {
		p := alloc.New(4096, 126, list.ResetNode)
		var l alloc.Local
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := p.Alloc(&l)
			p.Arena().At(s).Key.Store(uint64(i))
			p.Free(&l, s)
		}
	})
	b.Run("native", func(b *testing.B) {
		var sink *list.Node
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := &list.Node{}
			n.Key.Store(uint64(i))
			sink = n
		}
		_ = sink
	})
}
