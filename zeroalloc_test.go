package repro

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/hpscheme"
	"repro/internal/kvmap"
	"repro/internal/list"
	"repro/internal/oakit"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/server"
	"repro/internal/skiplist"
	"repro/internal/trace"
	"repro/internal/ttlcache"
)

// zanode is a minimal oakit node: the kit's generic primitives must stay
// zero-alloc for any user-defined node type, not just the in-repo ports.
type zanode struct {
	key  atomic.Uint64
	next atomic.Uint64
}

func (n *zanode) KeyWord() *atomic.Uint64  { return &n.key }
func (n *zanode) NextWord() *atomic.Uint64 { return &n.next }

func resetZANode(n *zanode) {
	n.key.Store(0)
	n.next.Store(0)
}

// The data-structure hot paths must not allocate Go heap memory: all node
// storage comes from the arena, descriptor lists live on the stack, the
// per-thread directory views refresh by re-slicing the COW chunk table,
// and the hazard-pointer snapshots reuse a sorted scratch slice. A
// steady-state operation therefore performs zero allocations — checked
// here, because a stray escape would silently put Go's GC back into the
// benchmark loop the paper's scheme exists to avoid.
func TestSteadyStateOpsDoNotAllocate(t *testing.T) {
	const capacity = 1 << 14

	t.Run("ListOA", func(t *testing.T) {
		l := list.NewOA(core.Config{MaxThreads: 1, Capacity: capacity})
		s := l.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Contains(k%512 + 1)
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
		}); avg > 0.05 {
			t.Fatalf("list ops allocate %.2f objects/op", avg)
		}
	})

	t.Run("SkipListOA", func(t *testing.T) {
		sl := skiplist.NewOA(core.Config{MaxThreads: 1, Capacity: capacity})
		s := sl.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Contains(k%512 + 1)
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
		}); avg > 0.05 {
			t.Fatalf("skip list ops allocate %.2f objects/op", avg)
		}
	})

	t.Run("MapOA", func(t *testing.T) {
		m := kvmap.New(core.Config{MaxThreads: 1, Capacity: capacity}, 512)
		s := m.Session(0)
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Put(k%512+1, k)
			s.Get(k%512 + 1)
			s.Remove(k%512 + 1)
		}); avg > 0.05 {
			t.Fatalf("map ops allocate %.2f objects/op", avg)
		}
	})

	t.Run("MapOALeased", func(t *testing.T) {
		// Ops through a leased session are the network server's hot path;
		// the lease adds no per-op cost.
		m := kvmap.New(core.Config{MaxThreads: 2, Capacity: capacity}, 512)
		s, err := m.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Release()
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Put(k%512+1, k)
			s.Get(k%512 + 1)
			s.CompareAndSwap(k%512+1, k, k+1)
			s.Remove(k%512 + 1)
		}); avg > 0.05 {
			t.Fatalf("leased map ops allocate %.2f objects/op", avg)
		}
	})

	t.Run("MapOALeaseChurn", func(t *testing.T) {
		// A full Acquire/op/Release cycle is also allocation-free: the map
		// caches one session per thread context, so lease churn (connection
		// churn, in server terms) reuses it rather than rebuilding it.
		m := kvmap.New(core.Config{MaxThreads: 2, Capacity: capacity}, 512)
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			s, err := m.Acquire()
			if err != nil {
				t.Fatal(err)
			}
			k++
			s.Put(k%512+1, k)
			s.Remove(k%512 + 1)
			s.Release()
		}); avg > 0.05 {
			t.Fatalf("lease churn allocates %.2f objects/cycle", avg)
		}
	})

	t.Run("GenericListOA", func(t *testing.T) {
		// The oakit generic traversal goes through interface-free type
		// parameters; a careless constraint would box the node pointer on
		// every NodeOf method call and put an escape in the read path.
		l := oakit.NewList[zanode](core.Config{MaxThreads: 1, Capacity: capacity}, resetZANode)
		s := l.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Contains(k%512 + 1)
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
		}); avg > 0.05 {
			t.Fatalf("generic kit ops allocate %.2f objects/op", avg)
		}
	})

	t.Run("CacheHit", func(t *testing.T) {
		// The cache layer adds aux-word decode + an access-stamp CAS over
		// the raw map read; none of it may touch the Go heap, or every GET
		// on the server's cache path would feed the GC.
		clock := new(atomic.Int64)
		clock.Store(1)
		m := kvmap.New(core.Config{MaxThreads: 2, Capacity: capacity}, 512)
		c := ttlcache.Over(m, ttlcache.Options{NowMs: clock.Load})
		defer c.Close()
		s, err := c.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		defer s.Release()
		for k := uint64(1); k <= 512; k++ {
			if err := s.Set(k, k); err != nil {
				t.Fatal(err)
			}
		}
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			clock.Add(1) // moving clock exercises the stamp-refresh CAS
			if _, ok := s.Get(k%512 + 1); !ok {
				t.Fatal("miss on an immortal key")
			}
			if err := s.Set(k%512+1, k); err != nil {
				t.Fatal(err)
			}
			s.TTL(k%512 + 1)
		}); avg > 0.05 {
			t.Fatalf("cache hit path allocates %.2f objects/op", avg)
		}
	})

	t.Run("QueueOA", func(t *testing.T) {
		q := queue.NewOA(core.Config{MaxThreads: 1, Capacity: capacity})
		s := q.QueueSession(0)
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Enqueue(k)
			s.Dequeue()
		}); avg > 0.05 {
			t.Fatalf("queue ops allocate %.2f objects/op", avg)
		}
	})
}

// Reclamation passes must stay (amortized) allocation-free too: Recycling
// snapshots hazard pointers into a reusable sorted slice and moves slots
// between pooled blocks, and the directory views refresh without copying.
// A few warm-up phases grow the scratch slice and the block freelist to
// steady state; after that, mutating ops plus a full Recycling call per
// run must not touch the Go heap.
func TestRecyclingDoesNotAllocate(t *testing.T) {
	const capacity = 1 << 14

	t.Run("ListOARecycling", func(t *testing.T) {
		l := list.NewOA(core.Config{MaxThreads: 1, Capacity: capacity})
		s := l.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		th := l.Engine().Manager().Thread(0)
		k := uint64(0)
		warm := func() {
			k++
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
			th.Recycling()
		}
		for i := 0; i < 64; i++ {
			warm()
		}
		if avg := testing.AllocsPerRun(500, warm); avg > 0.05 {
			t.Fatalf("ops + Recycling allocate %.2f objects/run", avg)
		}
	})

	t.Run("ListOAShardedRecycling", func(t *testing.T) {
		// Forcing four pool shards (the 1-CPU default collapses to one)
		// must not cost allocations either: refills that steal across
		// shards and drains that sweep all shards reuse the same blocks
		// and thread-local rng state.
		l := list.NewOA(core.Config{MaxThreads: 1, Capacity: capacity, Shards: 4})
		s := l.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		th := l.Engine().Manager().Thread(0)
		k := uint64(0)
		warm := func() {
			k++
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
			th.Recycling()
		}
		for i := 0; i < 64; i++ {
			warm()
		}
		if avg := testing.AllocsPerRun(500, warm); avg > 0.05 {
			t.Fatalf("sharded ops + Recycling allocate %.2f objects/run", avg)
		}
	})

	t.Run("ListHPScan", func(t *testing.T) {
		l := list.NewHP(hpscheme.Config{
			MaxThreads: 1, Capacity: capacity, ScanThreshold: 64,
		})
		s := l.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		k := uint64(0)
		warm := func() {
			// Each insert+delete retires one slot, so ScanThreshold=64
			// triggers a full Scan (sorted snapshot + probes) every 64 runs.
			k++
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
		}
		for i := 0; i < 512; i++ {
			warm()
		}
		if avg := testing.AllocsPerRun(2000, warm); avg > 0.05 {
			t.Fatalf("ops + amortized Scan allocate %.2f objects/run", avg)
		}
	})
}

// The observability layer must not cost allocations either: with hot-path
// counters enabled, every increment is an atomic add into a pre-allocated
// cache-padded block, so instrumented Insert/Delete/Search (and Recycling,
// which also feeds the drain counters) stay zero-alloc.
func TestInstrumentedOpsDoNotAllocate(t *testing.T) {
	const capacity = 1 << 14
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)

	t.Run("ListOAObsOn", func(t *testing.T) {
		l := list.NewOA(core.Config{MaxThreads: 1, Capacity: capacity})
		s := l.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Contains(k%512 + 1)
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
		}); avg > 0.05 {
			t.Fatalf("instrumented list ops allocate %.2f objects/op", avg)
		}
	})

	t.Run("SkipListOAObsOn", func(t *testing.T) {
		sl := skiplist.NewOA(core.Config{MaxThreads: 1, Capacity: capacity})
		s := sl.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Contains(k%512 + 1)
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
		}); avg > 0.05 {
			t.Fatalf("instrumented skip list ops allocate %.2f objects/op", avg)
		}
	})

	t.Run("ListOARecyclingObsOn", func(t *testing.T) {
		l := list.NewOA(core.Config{MaxThreads: 1, Capacity: capacity})
		s := l.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		th := l.Engine().Manager().Thread(0)
		k := uint64(0)
		warm := func() {
			k++
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
			th.Recycling()
		}
		for i := 0; i < 64; i++ {
			warm()
		}
		if avg := testing.AllocsPerRun(500, warm); avg > 0.05 {
			t.Fatalf("instrumented ops + Recycling allocate %.2f objects/run", avg)
		}
	})
}

// Event tracing must stay off the Go heap as well: each Record is three
// atomic stores into a pre-allocated ring plus one monotonic clock read,
// so fully traced operations — including the Recycling passes that emit
// phase/warning/drain/freeze events and the refill events on the alloc
// path — run without allocations after the first phase warms the rings.
func TestTracedOpsDoNotAllocate(t *testing.T) {
	const capacity = 1 << 14
	trace.SetEnabled(true)
	defer trace.SetEnabled(false)

	t.Run("ListOATraceOn", func(t *testing.T) {
		l := list.NewOA(core.Config{MaxThreads: 1, Capacity: capacity})
		s := l.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Contains(k%512 + 1)
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
		}); avg > 0.05 {
			t.Fatalf("traced list ops allocate %.2f objects/op", avg)
		}
	})

	t.Run("ListOARecyclingTraceOn", func(t *testing.T) {
		l := list.NewOA(core.Config{MaxThreads: 1, Capacity: capacity})
		s := l.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		th := l.Engine().Manager().Thread(0)
		k := uint64(0)
		warm := func() {
			k++
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
			th.Recycling()
		}
		for i := 0; i < 64; i++ {
			warm()
		}
		if avg := testing.AllocsPerRun(500, warm); avg > 0.05 {
			t.Fatalf("traced ops + Recycling allocate %.2f objects/run", avg)
		}
		if rec := l.Engine().Manager().TraceRecorder(); rec.Total() == 0 {
			t.Fatal("no events recorded — the zero-alloc proof proved nothing")
		}
	})
}

// The serving layer's encode paths must hold the same line: the binary
// frame writer and the RESP reply writer both append into a per-
// connection buffer that is reused across requests, so a steady-state
// encode performs zero allocations. The shard router is pure arithmetic
// and sits on the read path of every request.
func TestServerEncodePathsDoNotAllocate(t *testing.T) {
	t.Run("BinaryFrameAppend", func(t *testing.T) {
		buf := make([]byte, 0, 256)
		id := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			id++
			buf = server.AppendFrame(buf[:0], id, 0, id*3, id*7)
		}); avg > 0.05 {
			t.Fatalf("AppendFrame allocates %.2f objects/op", avg)
		}
	})

	t.Run("RESPEncode", func(t *testing.T) {
		buf := make([]byte, 0, 256)
		body := []byte("1234567")
		n := int64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			n++
			buf = server.AppendRESPSimple(buf[:0], "OK")
			buf = server.AppendRESPInt(buf, n)
			buf = server.AppendRESPBulk(buf, body)
			buf = server.AppendRESPNil(buf)
		}); avg > 0.05 {
			t.Fatalf("RESP encoders allocate %.2f objects/op", avg)
		}
	})

	t.Run("ShardRouting", func(t *testing.T) {
		sh := kvmap.NewSharded(core.Config{MaxThreads: 1, Capacity: 1 << 12}, 256, 4)
		defer sh.Close()
		k := uint64(0)
		sink := 0
		if avg := testing.AllocsPerRun(2000, func() {
			k += 0x9E3779B97F4A7C15
			sink += sh.ShardIndex(k)
		}); avg > 0.05 {
			t.Fatalf("ShardIndex allocates %.2f objects/op", avg)
		}
		_ = sink
	})
}
