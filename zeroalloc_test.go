package repro

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kvmap"
	"repro/internal/list"
	"repro/internal/queue"
	"repro/internal/skiplist"
)

// The data-structure hot paths must not allocate Go heap memory: all node
// storage comes from the arena, descriptor lists live on the stack, and
// the only allowed allocation is inside (rare) Recycling calls, whose
// hazard-pointer snapshot reuses a scratch map. A steady-state operation
// therefore performs zero allocations — checked here, because a stray
// escape would silently put Go's GC back into the benchmark loop the
// paper's scheme exists to avoid.
func TestSteadyStateOpsDoNotAllocate(t *testing.T) {
	const capacity = 1 << 14

	t.Run("ListOA", func(t *testing.T) {
		l := list.NewOA(core.Config{MaxThreads: 1, Capacity: capacity})
		s := l.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Contains(k%512 + 1)
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
		}); avg > 0.05 {
			t.Fatalf("list ops allocate %.2f objects/op", avg)
		}
	})

	t.Run("SkipListOA", func(t *testing.T) {
		sl := skiplist.NewOA(core.Config{MaxThreads: 1, Capacity: capacity})
		s := sl.Session(0)
		for k := uint64(1); k <= 512; k++ {
			s.Insert(k)
		}
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Contains(k%512 + 1)
			s.Insert(k%512 + 600)
			s.Delete(k%512 + 600)
		}); avg > 0.05 {
			t.Fatalf("skip list ops allocate %.2f objects/op", avg)
		}
	})

	t.Run("MapOA", func(t *testing.T) {
		m := kvmap.New(core.Config{MaxThreads: 1, Capacity: capacity}, 512)
		s := m.Session(0)
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Put(k%512+1, k)
			s.Get(k%512 + 1)
			s.Remove(k%512 + 1)
		}); avg > 0.05 {
			t.Fatalf("map ops allocate %.2f objects/op", avg)
		}
	})

	t.Run("QueueOA", func(t *testing.T) {
		q := queue.NewOA(core.Config{MaxThreads: 1, Capacity: capacity})
		s := q.QueueSession(0)
		k := uint64(0)
		if avg := testing.AllocsPerRun(2000, func() {
			k++
			s.Enqueue(k)
			s.Dequeue()
		}); avg > 0.05 {
			t.Fatalf("queue ops allocate %.2f objects/op", avg)
		}
	})
}
