// Per-figure benchmarks. Every table/figure of the paper's evaluation has
// a bench target here; cmd/oabench runs the same cells with the paper's
// full sweep and ratio reporting. Run:
//
//	go test -bench=. -benchmem            # everything
//	go test -bench 'Fig1/Hash'            # one panel
//
// The "mops" metric is throughput in million operations per second.
package repro

import (
	"strconv"
	"testing"

	"repro/internal/harness"
	"repro/internal/smr"
)

// benchThreads is the worker count for bench cells; the host in CI-like
// environments may have a single CPU, in which case workers time-slice
// (ratios between schemes remain meaningful, absolute scaling does not).
const benchThreads = 4

func benchCell(b *testing.B, st harness.Structure, sc smr.Scheme,
	readFraction float64, delta, localPool int, warnStore bool) {
	b.Helper()
	set, err := harness.Build(harness.BuildConfig{
		Structure: st, Scheme: sc, Threads: benchThreads,
		Delta: delta, LocalPool: localPool, WarningByStore: warnStore,
	})
	if err != nil {
		b.Fatal(err)
	}
	w := harness.WorkloadFor(st, benchThreads, readFraction)
	harness.Prefill(set, w)
	w.TotalOps = b.N
	b.ResetTimer()
	res := harness.RunPrefilled(set, w)
	b.StopTimer()
	b.ReportMetric(res.Mops(), "mops")
}

// schemesFor mirrors the paper's per-structure scheme matrix.
func schemesFor(st harness.Structure) []smr.Scheme {
	s := []smr.Scheme{smr.NoRecl, smr.OA, smr.HP, smr.EBR}
	if st.Supports(smr.Anchors) {
		s = append(s, smr.Anchors)
	}
	return s
}

// BenchmarkFig1 regenerates Figure 1 (and via ratios, Figure 4; run with a
// capped GOMAXPROCS for Figures 5-6): throughput of every structure under
// every scheme at the 80%-read mix, reclamation every ~50,000 allocations.
func BenchmarkFig1(b *testing.B) {
	for _, st := range harness.Structures {
		for _, sc := range schemesFor(st) {
			b.Run(string(st)+"/"+sc.String(), func(b *testing.B) {
				benchCell(b, st, sc, 0.8, 50000, 126, false)
			})
		}
	}
}

// BenchmarkFig2 regenerates Figure 2: throughput as a function of the
// local pool size (paper: 32 threads, a phase every ~16,000 allocations).
func BenchmarkFig2(b *testing.B) {
	for _, st := range []harness.Structure{harness.LinkedList5K, harness.Hash} {
		for _, sc := range []smr.Scheme{smr.OA, smr.HP, smr.EBR} {
			for _, pool := range []int{2, 32, 126} {
				b.Run(string(st)+"/"+sc.String()+"/pool="+strconv.Itoa(pool), func(b *testing.B) {
					benchCell(b, st, sc, 0.8, 16000, pool, false)
				})
			}
		}
	}
}

// BenchmarkFig3 regenerates Figure 3: throughput as a function of the
// reclamation phase frequency δ.
func BenchmarkFig3(b *testing.B) {
	for _, st := range []harness.Structure{harness.LinkedList5K, harness.Hash} {
		for _, sc := range []smr.Scheme{smr.OA, smr.HP, smr.EBR} {
			for _, delta := range []int{8000, 16000, 32000} {
				b.Run(string(st)+"/"+sc.String()+"/delta="+strconv.Itoa(delta), func(b *testing.B) {
					benchCell(b, st, sc, 0.8, delta, 126, false)
				})
			}
		}
	}
}

// BenchmarkFig7 regenerates Figure 7: the 40%-mutation mix (60% reads).
func BenchmarkFig7(b *testing.B) {
	for _, st := range harness.Structures {
		for _, sc := range schemesFor(st) {
			b.Run(string(st)+"/"+sc.String(), func(b *testing.B) {
				benchCell(b, st, sc, 0.6, 50000, 126, false)
			})
		}
	}
}

// BenchmarkFig8 regenerates Figure 8: the 2/3-mutation mix (1/3 reads).
func BenchmarkFig8(b *testing.B) {
	for _, st := range harness.Structures {
		for _, sc := range schemesFor(st) {
			b.Run(string(st)+"/"+sc.String(), func(b *testing.B) {
				benchCell(b, st, sc, 1.0/3.0, 50000, 126, false)
			})
		}
	}
}

// BenchmarkAblationWarning measures Appendix E's warning-bit protocol
// choice: once-per-phase CAS (the paper's optimization) vs plain store.
func BenchmarkAblationWarning(b *testing.B) {
	for _, st := range []harness.Structure{harness.LinkedList128, harness.Hash} {
		b.Run(string(st)+"/cas", func(b *testing.B) {
			benchCell(b, st, smr.OA, 0.8, 16000, 126, false)
		})
		b.Run(string(st)+"/store", func(b *testing.B) {
			benchCell(b, st, smr.OA, 0.8, 16000, 126, true)
		})
	}
}

// BenchmarkOAReadBarrier isolates the cost of the paper's Algorithm 1 read
// barrier: the pure-read workload on the long list is a traversal
// micro-benchmark where OA's warning check is the only overhead vs NoRecl.
func BenchmarkOAReadBarrier(b *testing.B) {
	for _, sc := range []smr.Scheme{smr.NoRecl, smr.OA, smr.HP, smr.EBR} {
		b.Run(sc.String(), func(b *testing.B) {
			benchCell(b, harness.LinkedList5K, sc, 1.0, 50000, 126, false)
		})
	}
}
